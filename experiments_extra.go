package anycastctx

// Additional studies the paper reports in passing: temporal site affinity
// (§8 confirms prior work that affinity is high over the DITL window) and
// the deployment-growth backdrop of §7.3 (root sites more than doubled,
// 516→1367, over five years; the CDN's front-ends also doubled).

import (
	"context"
	"fmt"

	"anycastctx/internal/anycastnet"
	"anycastctx/internal/cdn"
	"anycastctx/internal/core"
	"anycastctx/internal/geo"
	"anycastctx/internal/latency"
	"anycastctx/internal/report"
	"anycastctx/internal/stage"
	"anycastctx/internal/topology"
)

func init() {
	register(Experiment{
		ID:         "affinity",
		Title:      "§8: anycast site affinity over the capture window",
		PaperClaim: "site affinity is high over the DITL window (confirming Ballani & Francis)",
		Needs:      []stage.ID{stage.Campaign},
		Run:        runAffinity,
	})
	register(Experiment{
		ID:         "growth",
		Title:      "§7.3: deployment growth, 516→1367 root sites over five years",
		PaperClaim: "growth more than doubled site counts; latency falls and coverage rises with growth",
		Run:        runGrowth,
	})
}

func runAffinity(ctx context.Context, w *World, seed int64) (Result, error) {
	t := report.Table{
		Title:   "Site affinity per letter over a 48-hour window (0.5%/hour flap rate)",
		Headers: []string{"Letter", "Stable /24s", "Mean affinity", "Flaps"},
	}
	var worstStable float64 = 1
	for li, name := range w.Campaign().LetterNames {
		res, err := w.Campaign().Affinity(li, 0.005, 48, seed)
		if err != nil {
			return Result{}, fmt.Errorf("letter %s: %w", name, err)
		}
		t.AddRow(name,
			fmt.Sprintf("%.1f%%", 100*res.StableShare),
			fmt.Sprintf("%.3f", res.MeanAffinity),
			fmt.Sprintf("%d", res.Flaps))
		if res.StableShare < worstStable {
			worstStable = res.StableShare
		}
	}
	return Result{
		ID:         "affinity",
		Title:      "§8: anycast site affinity",
		PaperClaim: "affinity is high over the DITL window",
		Measured:   fmt.Sprintf("worst letter keeps %.0f%% of /24s fully stable over 48h", 100*worstStable),
		Output:     t.Render(),
	}, nil
}

// rootGrowthTimeline approximates §7.3's numbers: total root sites by year.
var rootGrowthTimeline = []struct {
	Year  int
	Sites int
}{
	{2016, 516},
	{2017, 680},
	{2018, 850},
	{2019, 1020},
	{2020, 1190},
	{2021, 1367},
}

func runGrowth(ctx context.Context, w *World, _ int64) (Result, error) {
	g, rng, err := ablGraph(w, 40)
	if err != nil {
		return Result{}, err
	}
	model := latency.DefaultModel()
	t := report.Table{
		Title:   "Root DNS growth (scaled to one aggregate deployment, global sites ~ total/4)",
		Headers: []string{"Year", "Total sites", "Median RTT (ms)", "Users within 500km", "At closest site"},
	}
	type point struct {
		med, cov float64
	}
	var first, last point
	locs := growthLocations(g)
	for i, yr := range rootGrowthTimeline {
		// The paper counts global+local; roughly a quarter of root sites
		// were global, which is what the latency analysis uses.
		globals := yr.Sites / 4
		d, err := anycastnet.BuildLetter(g, anycastnet.LetterSpec{
			Letter:      fmt.Sprintf("roots%d", yr.Year),
			GlobalSites: globals,
			TotalSites:  globals,
			Openness:    0.28,
		}, rng)
		if err != nil {
			return Result{}, err
		}
		rc, err := core.CompareRouting(g, d, model)
		if err != nil {
			return Result{}, err
		}
		cov := core.CoverageCurve(core.GlobalSiteLocs(d.Sites), locs, []float64{500})
		t.AddRow(fmt.Sprintf("%d", yr.Year), fmt.Sprintf("%d", yr.Sites),
			fmt.Sprintf("%.1f", rc.ActualMedianMs),
			fmt.Sprintf("%.1f%%", 100*cov[0].P),
			fmt.Sprintf("%.1f%%", 100*rc.AtOptimalShare))
		if i == 0 {
			first = point{rc.ActualMedianMs, cov[0].P}
		}
		last = point{rc.ActualMedianMs, cov[0].P}
	}
	return Result{
		ID:         "growth",
		Title:      "§7.3: root deployment growth",
		PaperClaim: "sites 516→1367 over five years; more sites buy latency and coverage",
		Measured: fmt.Sprintf("2016→2021: median RTT %.0f→%.0f ms, 500km coverage %.0f%%→%.0f%%",
			first.med, last.med, 100*first.cov, 100*last.cov),
		Output: t.Render(),
	}, nil
}

// growthLocations derives ⟨region, AS⟩ user locations from an ablation
// graph (same scaling cdn.Locations applies to the shared world).
func growthLocations(g *topology.Graph) []cdn.Location {
	return cdn.Locations(g, 1e9)
}

func init() {
	register(Experiment{
		ID:         "apps",
		Title:      "§2.2: regulatory rings and application latency",
		PaperClaim: "applications are pinned to the largest allowed ring; performance differences are not taken into account",
		Needs:      []stage.ID{stage.CDN, stage.Locations},
		Run:        runApps,
	})
}

func runApps(ctx context.Context, w *World, seed int64) (Result, error) {
	rows, err := w.CDN().AppLatencies(w.Locations(), cdn.PaperApps(), seed)
	if err != nil {
		return Result{}, err
	}
	t := report.Table{
		Title:   "Application classes pinned to compliance rings (user-weighted medians)",
		Headers: []string{"Application", "Ring", "Traffic share", "Median RTT (ms)", "Regulatory cost (ms/RTT)"},
	}
	var worst float64
	for _, r := range rows {
		t.AddRow(r.App.Name, r.App.Ring,
			fmt.Sprintf("%.0f%%", 100*r.App.TrafficShare),
			fmt.Sprintf("%.1f", r.MedianRTTMs),
			fmt.Sprintf("%.1f", r.RegulatoryCostMs))
		if r.RegulatoryCostMs > worst {
			worst = r.RegulatoryCostMs
		}
	}
	mix := cdn.TrafficWeightedMedianMs(rows)
	return Result{
		ID:         "apps",
		Title:      "§2.2: regulatory rings",
		PaperClaim: "ring choice follows compliance, not performance",
		Measured: fmt.Sprintf("strictest class pays %.1f ms/RTT over R110; traffic-weighted median %.1f ms",
			worst, mix),
		Output: t.Render(),
	}, nil
}

func init() {
	register(Experiment{
		ID:         "continents",
		Title:      "Appendix F: inflation and latency by continent",
		PaperClaim: "latency falls near front-ends; performance varies regionally with infrastructure density",
		Needs:      []stage.ID{stage.CDN, stage.Campaign, stage.Join, stage.Locations, stage.ServerLogs},
		Run:        runContinents,
	})
}

func runContinents(ctx context.Context, w *World, seed int64) (Result, error) {
	logs, err := w.ServerLogsCtx(ctx)
	if err != nil {
		return Result{}, err
	}
	big := w.CDN().Rings[len(w.CDN().Rings)-1]
	rootObs := core.GeoInflationAllRoots(w.Campaign(), w.JoinCtx(ctx))

	// Per-continent aggregates for the CDN (largest ring).
	type agg struct {
		rtt, infl, users float64
	}
	cdnByCont := map[geo.Continent]*agg{}
	for _, r := range logs {
		if r.Ring != big.Name {
			continue
		}
		cont := w.Regions()[r.Location.Region].Continent
		a := cdnByCont[cont]
		if a == nil {
			a = &agg{}
			cdnByCont[cont] = a
		}
		a.rtt += r.MedianRTTMs * r.Location.Users
		a.users += r.Location.Users
	}
	// Root inflation per continent: map joined recursives to continents.
	rootByCont := map[geo.Continent]*agg{}
	for i, row := range w.JoinCtx(ctx).Rows {
		rec := w.Pop().Recursives[row.RecIdx]
		host := w.Graph().AS(rec.ASN)
		if host == nil || host.Region < 0 {
			continue
		}
		cont := w.Regions()[host.Region].Continent
		a := rootByCont[cont]
		if a == nil {
			a = &agg{}
			rootByCont[cont] = a
		}
		if i < len(rootObs) {
			a.infl += rootObs[i].Value * rootObs[i].Weight
			a.users += rootObs[i].Weight
		}
	}

	t := report.Table{
		Title:   "Per-continent user experience (user-weighted means)",
		Headers: []string{"Continent", "CDN RTT (ms)", "Root geo inflation (ms)"},
	}
	var best, worst float64 = 1e18, 0
	for cont := geo.Continent(0); cont < 7; cont++ {
		c := cdnByCont[cont]
		r := rootByCont[cont]
		if c == nil || c.users == 0 {
			continue
		}
		rtt := c.rtt / c.users
		infl := "-"
		if r != nil && r.users > 0 {
			infl = fmt.Sprintf("%.1f", r.infl/r.users)
		}
		t.AddRow(cont.String(), fmt.Sprintf("%.1f", rtt), infl)
		if rtt < best {
			best = rtt
		}
		if rtt > worst {
			worst = rtt
		}
	}
	return Result{
		ID:         "continents",
		Title:      "Appendix F: per-continent breakdown",
		PaperClaim: "regional variation follows infrastructure density",
		Measured:   fmt.Sprintf("CDN mean RTT spans %.0f-%.0f ms across continents", best, worst),
		Output:     t.Render(),
	}, nil
}
