package anycastctx

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"anycastctx/internal/obs"
	"anycastctx/internal/stage"
	"anycastctx/internal/stats"
	"anycastctx/internal/world"
)

// Result is one reproduced table or figure.
type Result struct {
	// ID is the experiment identifier (e.g. "fig2a", "tab4").
	ID string
	// Title names the paper artifact.
	Title string
	// PaperClaim summarizes what the paper reports.
	PaperClaim string
	// Measured summarizes what this run measured (the comparable number).
	Measured string
	// Output is the rendered table or CDF series.
	Output string
	// Stats holds per-run observability data — wall time, allocation
	// delta, and which pipeline counters advanced. Nil unless obs span
	// collection is enabled; never influences Measured or Output.
	Stats *RunStats
}

// RunStats is the observability record of one experiment run.
type RunStats struct {
	// WallNs is the experiment's wall-clock duration.
	WallNs int64 `json:"wall_ns"`
	// AllocBytes is the heap allocated while it ran.
	AllocBytes uint64 `json:"alloc_bytes"`
	// CounterDeltas maps metric names to how far each pipeline counter
	// advanced during the run.
	CounterDeltas map[string]uint64 `json:"counter_deltas,omitempty"`
}

// Experiment is a registered, runnable reproduction of one paper artifact.
type Experiment struct {
	ID         string
	Title      string
	PaperClaim string
	// Needs declares which world stages the experiment reads, so a
	// demand-driven world materializes exactly those (plus their
	// transitive dependencies) before Run starts. An experiment that
	// touches no world stage — or builds its own world, like fig11 —
	// leaves Needs nil. runMeasured demands these before the
	// measurement snapshot, so stage build work never pollutes an
	// experiment's counter deltas.
	Needs []stage.ID
	// Run executes the experiment on a built world. ctx carries the
	// caller's span for trace parentage (never cancellation — experiments
	// are deterministic and run to completion); seed derives the
	// experiment's measurement-sampling streams (catchments and
	// populations live in the world and stay fixed).
	Run func(ctx context.Context, w *World, seed int64) (Result, error)
}

// ProgressEvent is one experiment lifecycle transition, delivered to the
// hook registered with SetProgressHook. Each experiment emits two events:
// one with Done=false when it starts and one with Done=true when it
// finishes (Err set if it failed).
type ProgressEvent struct {
	// ID is the experiment identifier.
	ID string
	// Done distinguishes the completion event from the start event.
	Done bool
	// Err is the experiment's error, set only on a Done event.
	Err error
	// WallNs is the experiment's wall-clock duration, set on Done.
	WallNs int64
	// Rows counts non-empty lines of rendered Output, set on Done.
	Rows int
}

// progressHook is the registered progress callback. Atomic so RunAllParallel
// workers read it without locking; the callback itself must be safe for
// concurrent calls when experiments run in parallel.
var progressHook atomic.Pointer[func(ProgressEvent)]

// SetProgressHook registers fn to receive per-experiment start/finish
// events, replacing any previous hook; nil clears it. The hook observes
// runs — it must not mutate worlds or experiment state, and it never
// affects Measured or Output.
func SetProgressHook(fn func(ProgressEvent)) {
	if fn == nil {
		progressHook.Store(nil)
		return
	}
	progressHook.Store(&fn)
}

// countRows counts non-empty lines, the "rows processed" figure reported
// per experiment in progress events.
func countRows(output string) int {
	n := 0
	for _, line := range strings.Split(output, "\n") {
		if strings.TrimSpace(line) != "" {
			n++
		}
	}
	return n
}

// registry holds all experiments in presentation order.
var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// Experiments returns every registered experiment, in the paper's order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// RunExperiment runs one experiment by ID with a seed derived from the
// world's configuration.
func RunExperiment(w *World, id string) (Result, error) {
	return RunExperimentCtx(context.Background(), w, id)
}

// RunExperimentCtx is RunExperiment with the caller's span context carried
// into the experiment body (and from there into the pipeline fan-outs).
func RunExperimentCtx(ctx context.Context, w *World, id string) (Result, error) {
	for _, e := range registry {
		if e.ID == id {
			return runOne(ctx, w, e, true)
		}
	}
	known := make([]string, 0, len(registry))
	for _, e := range registry {
		known = append(known, e.ID)
	}
	sort.Strings(known)
	return Result{}, fmt.Errorf("anycastctx: unknown experiment %q (known: %v)", id, known)
}

// runOne executes one experiment with its derived seed. When obs span
// collection is enabled it records an "experiment.<id>" span and attaches
// wall time, allocation, and counter deltas to the result; the experiment
// itself sees an identical world and rng either way.
//
// withDeltas controls whether per-experiment counter deltas are computed
// from before/after registry snapshots. Deltas are only meaningful when
// experiments run one at a time: concurrent experiments advance the same
// global counters, so RunAllParallel passes withDeltas=false rather than
// attribute one experiment's counts to another.
func runOne(ctx context.Context, w *World, e Experiment, withDeltas bool) (Result, error) {
	hook := progressHook.Load()
	var started time.Time
	if hook != nil {
		started = time.Now()
		(*hook)(ProgressEvent{ID: e.ID})
	}
	res, err := runMeasured(ctx, w, e, withDeltas)
	if hook != nil {
		(*hook)(ProgressEvent{
			ID:     e.ID,
			Done:   true,
			Err:    err,
			WallNs: time.Since(started).Nanoseconds(),
			Rows:   countRows(res.Output),
		})
	}
	return res, err
}

// runMeasured is runOne minus progress reporting: seed derivation, the
// "experiment.<id>" span, and stat attachment.
func runMeasured(ctx context.Context, w *World, e Experiment, withDeltas bool) (Result, error) {
	seed := w.Cfg.Seed * 7919
	// Materialize the declared stage needs first, outside the
	// experiment's span and snapshot window: stage builds are world
	// work, not experiment work, and attributing a cache miss's compute
	// to whichever experiment happened to run first would make counter
	// deltas depend on execution order.
	if err := w.Demand(ctx, e.Needs...); err != nil {
		return Result{}, fmt.Errorf("materializing stages for %s: %w", e.ID, err)
	}
	if !obs.Enabled() {
		return e.Run(ctx, w, seed)
	}
	var before obs.Snapshot
	if withDeltas {
		before = obs.TakeSnapshot()
	}
	ctx, span := obs.StartSpanCtx(ctx, "experiment."+e.ID)
	res, err := e.Run(ctx, w, seed)
	span.End()
	if err != nil {
		return res, err
	}
	if rec, ok := span.Record(); ok {
		res.Stats = &RunStats{
			WallNs:     rec.WallNs,
			AllocBytes: rec.AllocBytes,
		}
		if withDeltas {
			res.Stats.CounterDeltas = obs.TakeSnapshot().CounterDeltas(before)
		}
	}
	return res, err
}

// RunAll runs every experiment. It always returns the results of the
// experiments that succeeded; the error aggregates every failure (one
// broken experiment does not mask the others).
func RunAll(w *World) ([]Result, error) {
	return RunAllCtx(context.Background(), w)
}

// RunAllCtx is RunAll under the caller's span context: the whole batch is
// recorded as one "run.experiments" span with each "experiment.<id>" span
// as a direct child.
func RunAllCtx(ctx context.Context, w *World) ([]Result, error) {
	ctx, span := obs.StartSpanCtx(ctx, "run.experiments")
	defer span.End()
	var out []Result
	var errs []error
	for _, e := range registry {
		res, err := runOne(ctx, w, e, true)
		if err != nil {
			errs = append(errs, fmt.Errorf("experiment %s: %w", e.ID, err))
			continue
		}
		out = append(out, res)
	}
	return out, errors.Join(errs...)
}

// RunAllParallel runs every experiment across a pool of workers. Results
// come back in the same registry order as RunAll and, because every
// experiment derives its rng from the world seed and only reads shared
// world state, each Result's Measured and Output are byte-identical to a
// serial run (covered by TestRunAllParallelMatchesSerial). Error
// aggregation matches RunAll: every failure is joined, in registry order.
//
// Per-experiment RunStats differ from serial runs in two documented ways:
// CounterDeltas is omitted (global pipeline counters advance concurrently,
// so per-experiment attribution would be wrong) and AllocBytes includes
// allocation by concurrently running experiments.
//
// workers <= 1 falls back to the serial RunAll.
func RunAllParallel(w *World, workers int) ([]Result, error) {
	return RunAllParallelCtx(context.Background(), w, workers)
}

// RunAllParallelCtx is RunAllParallel under the caller's span context. All
// workers share one "run.experiments" parent span; because span parentage
// is context-carried (not stack-carried), concurrent experiments still
// record correct trees.
func RunAllParallelCtx(ctx context.Context, w *World, workers int) ([]Result, error) {
	if workers <= 1 || len(registry) <= 1 {
		return RunAllCtx(ctx, w)
	}
	if workers > len(registry) {
		workers = len(registry)
	}
	ctx, span := obs.StartSpanCtx(ctx, "run.experiments")
	defer span.End()
	type slot struct {
		res Result
		err error
	}
	slots := make([]slot, len(registry))
	var next atomic.Int64
	var wg sync.WaitGroup
	for k := 0; k < workers; k++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(registry) {
					return
				}
				slots[i].res, slots[i].err = runOne(ctx, w, registry[i], false)
			}
		}()
	}
	wg.Wait()
	var out []Result
	var errs []error
	for i, e := range registry {
		if slots[i].err != nil {
			errs = append(errs, fmt.Errorf("experiment %s: %w", e.ID, slots[i].err))
			continue
		}
		out = append(out, slots[i].res)
	}
	return out, errors.Join(errs...)
}

// newCDF builds a CDF over weighted observations; it fails only on
// programmer error (callers pass non-empty data).
func newCDF(obs []stats.WeightedValue) (*stats.CDF, error) {
	return stats.NewCDF(obs)
}

// msGrid is the x-axis sampling used when rendering CDF figures.
func msGrid(max float64, step float64) []float64 {
	var xs []float64
	for x := 0.0; x <= max; x += step {
		xs = append(xs, x)
	}
	return xs
}

// logGrid samples a log-scaled axis (for queries/user/day figures).
func logGrid() []float64 {
	return []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000}
}

// build2020 constructs the companion 2020-DITL world at the same scale.
func build2020(ctx context.Context, w *World) (*World, error) {
	cfg := w.Cfg
	cfg.Year = world.DITL2020
	cfg.Seed = w.Cfg.Seed + 202000
	return world.Build(ctx, cfg)
}
