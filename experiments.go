package anycastctx

import (
	"fmt"
	"math/rand"
	"sort"

	"anycastctx/internal/stats"
	"anycastctx/internal/world"
)

// Result is one reproduced table or figure.
type Result struct {
	// ID is the experiment identifier (e.g. "fig2a", "tab4").
	ID string
	// Title names the paper artifact.
	Title string
	// PaperClaim summarizes what the paper reports.
	PaperClaim string
	// Measured summarizes what this run measured (the comparable number).
	Measured string
	// Output is the rendered table or CDF series.
	Output string
}

// Experiment is a registered, runnable reproduction of one paper artifact.
type Experiment struct {
	ID         string
	Title      string
	PaperClaim string
	// Run executes the experiment on a built world. rng supplies
	// measurement-sampling randomness (catchments and populations live in
	// the world and stay fixed).
	Run func(w *World, rng *rand.Rand) (Result, error)
}

// registry holds all experiments in presentation order.
var registry []Experiment

func register(e Experiment) {
	registry = append(registry, e)
}

// Experiments returns every registered experiment, in the paper's order.
func Experiments() []Experiment {
	out := make([]Experiment, len(registry))
	copy(out, registry)
	return out
}

// RunExperiment runs one experiment by ID with a seed derived from the
// world's configuration.
func RunExperiment(w *World, id string) (Result, error) {
	for _, e := range registry {
		if e.ID == id {
			rng := rand.New(rand.NewSource(w.Cfg.Seed * 7919))
			return e.Run(w, rng)
		}
	}
	known := make([]string, 0, len(registry))
	for _, e := range registry {
		known = append(known, e.ID)
	}
	sort.Strings(known)
	return Result{}, fmt.Errorf("anycastctx: unknown experiment %q (known: %v)", id, known)
}

// RunAll runs every experiment, collecting failures into the error.
func RunAll(w *World) ([]Result, error) {
	var out []Result
	var firstErr error
	for _, e := range registry {
		rng := rand.New(rand.NewSource(w.Cfg.Seed * 7919))
		res, err := e.Run(w, rng)
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("experiment %s: %w", e.ID, err)
			}
			continue
		}
		out = append(out, res)
	}
	return out, firstErr
}

// mustCDF panics only on programmer error (callers pass non-empty data).
func newCDF(obs []stats.WeightedValue) (*stats.CDF, error) {
	return stats.NewCDF(obs)
}

// msGrid is the x-axis sampling used when rendering CDF figures.
func msGrid(max float64, step float64) []float64 {
	var xs []float64
	for x := 0.0; x <= max; x += step {
		xs = append(xs, x)
	}
	return xs
}

// logGrid samples a log-scaled axis (for queries/user/day figures).
func logGrid() []float64 {
	return []float64{0.001, 0.003, 0.01, 0.03, 0.1, 0.3, 1, 3, 10, 30, 100, 300, 1000}
}

// build2020 constructs the companion 2020-DITL world at the same scale.
func build2020(w *World) (*World, error) {
	cfg := w.Cfg
	cfg.Year = world.DITL2020
	cfg.Seed = w.Cfg.Seed + 202000
	return world.Build(cfg)
}
