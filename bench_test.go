package anycastctx

// The benchmark harness regenerates every table and figure in the paper's
// evaluation: one benchmark per artifact, each running the registered
// experiment against a shared world. Run with:
//
//	go test -bench=. -benchmem
//
// Benchmarks measure the analysis pipelines (catchment joins, inflation
// computation, amortization), not world construction, which happens once.

import (
	"context"
	"io"
	"runtime"
	"sync"
	"testing"

	"anycastctx/internal/ditl"
	"anycastctx/internal/obs"
	"anycastctx/internal/stage"
	"anycastctx/internal/world"
)

var (
	benchWorld     *World
	benchWorldOnce sync.Once
	benchWorldErr  error
)

// benchScale is the world scale benchmarks run at. ANYCASTCTX_TEST_SCALE
// overrides it (scripts/bench.sh and the CI bench smoke pass it); the
// default 0.2 keeps committed BENCH_<date>.json baselines comparable.
func benchScale() float64 {
	return world.ScaleFromEnv(0.2)
}

func getBenchWorld(b *testing.B) *World {
	b.Helper()
	benchWorldOnce.Do(func() {
		benchWorld, benchWorldErr = BuildWorld(Config{Seed: 1, Scale: benchScale()})
		if benchWorldErr == nil {
			// Materialize every stage up front: experiment benchmarks
			// measure experiment compute, not first-touch stage builds
			// (BenchmarkWorldColdBuild/WarmLoad own those costs).
			benchWorldErr = benchWorld.Demand(context.Background(), stage.All()...)
		}
	})
	if benchWorldErr != nil {
		b.Fatal(benchWorldErr)
	}
	return benchWorld
}

// benchExperiment runs one registered experiment b.N times and reports the
// headline measurement once.
func benchExperiment(b *testing.B, id string) {
	w := getBenchWorld(b)
	b.ResetTimer()
	var res Result
	var err error
	for i := 0; i < b.N; i++ {
		res, err = RunExperiment(w, id)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(len(res.Output)), "output_bytes")
	if rss := obs.PeakRSSBytes(); rss > 0 {
		b.ReportMetric(float64(rss), "peak_rss_bytes")
	}
	if testing.Verbose() {
		b.Logf("%s measured: %s", id, res.Measured)
	}
}

func BenchmarkFig1RingsMap(b *testing.B)             { benchExperiment(b, "fig1") }
func BenchmarkFig2aGeoInflation(b *testing.B)        { benchExperiment(b, "fig2a") }
func BenchmarkFig2bLatencyInflation(b *testing.B)    { benchExperiment(b, "fig2b") }
func BenchmarkFig3QueriesPerUser(b *testing.B)       { benchExperiment(b, "fig3") }
func BenchmarkFig4aRingLatency(b *testing.B)         { benchExperiment(b, "fig4a") }
func BenchmarkFig4bRingDeltas(b *testing.B)          { benchExperiment(b, "fig4b") }
func BenchmarkFig5aCDNGeoInflation(b *testing.B)     { benchExperiment(b, "fig5a") }
func BenchmarkFig5bCDNLatencyInflation(b *testing.B) { benchExperiment(b, "fig5b") }
func BenchmarkFig6aASPathLengths(b *testing.B)       { benchExperiment(b, "fig6a") }
func BenchmarkFig6bPathLenVsInflation(b *testing.B)  { benchExperiment(b, "fig6b") }
func BenchmarkFig7aLatencyEfficiency(b *testing.B)   { benchExperiment(b, "fig7a") }
func BenchmarkFig7bCoverage(b *testing.B)            { benchExperiment(b, "fig7b") }
func BenchmarkFig8InvalidTLDs(b *testing.B)          { benchExperiment(b, "fig8") }
func BenchmarkFig9NoSlash24Join(b *testing.B)        { benchExperiment(b, "fig9") }
func BenchmarkFig10FavoriteSite(b *testing.B)        { benchExperiment(b, "fig10") }
func BenchmarkFig11DITL2020(b *testing.B)            { benchExperiment(b, "fig11") }
func BenchmarkFig12ResolverLatency(b *testing.B)     { benchExperiment(b, "fig12") }
func BenchmarkFig13RootLatencyShare(b *testing.B)    { benchExperiment(b, "fig13") }
func BenchmarkFig14LatencyMap(b *testing.B)          { benchExperiment(b, "fig14") }
func BenchmarkTable1Survey(b *testing.B)             { benchExperiment(b, "tab1") }
func BenchmarkTables23Datasets(b *testing.B)         { benchExperiment(b, "tab23") }
func BenchmarkTable4Overlap(b *testing.B)            { benchExperiment(b, "tab4") }
func BenchmarkTable5RedundantTrace(b *testing.B)     { benchExperiment(b, "tab5") }
func BenchmarkAppendixCPageRTTs(b *testing.B)        { benchExperiment(b, "appc") }
func BenchmarkLocalPerspective(b *testing.B)         { benchExperiment(b, "local") }

// BenchmarkWorldBuild measures full environment construction at test scale
// (an ablation of the substrate cost itself).
func BenchmarkWorldBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := BuildWorld(TestScaleConfig(int64(i + 1))); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rss := obs.PeakRSSBytes(); rss > 0 {
		b.ReportMetric(float64(rss), "peak_rss_bytes")
	}
}

// Hot-path benchmarks: the per-entity-stream loops that fan out under
// internal/par (campaign assembly, capture emission, ping sampling). Each
// has a Serial twin pinned to GOMAXPROCS(1); the pair puts the parallel
// win in the BENCH trajectory and lets benchdiff gate both shapes. The
// outputs are byte-identical between the twins — that contract is tested
// in parallel_test.go; here we only measure.

// withProcs runs fn under GOMAXPROCS(n) and restores the old value.
func withProcs(n int, fn func()) {
	prev := runtime.GOMAXPROCS(n)
	defer runtime.GOMAXPROCS(prev)
	fn()
}

func benchCampaignAssembly(b *testing.B) {
	w := getBenchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ditl.Build(context.Background(), w.Graph(), w.Letters(), w.Pop(),
			w.Zone(), w.Rates(), w.Model(), ditl.Config{}, w.Cfg.Seed); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCampaignAssembly(b *testing.B) { benchCampaignAssembly(b) }
func BenchmarkCampaignAssemblySerial(b *testing.B) {
	withProcs(1, func() { benchCampaignAssembly(b) })
}

func benchCaptureEmission(b *testing.B) {
	w := getBenchWorld(b)
	li, site := busiestLetterSite(w)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Campaign().EmitSiteCapture(io.Discard, li, site, 5000, 7); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCaptureEmission(b *testing.B) { benchCaptureEmission(b) }
func BenchmarkCaptureEmissionSerial(b *testing.B) {
	withProcs(1, func() { benchCaptureEmission(b) })
}

func benchPingSampling(b *testing.B) {
	w := getBenchWorld(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if res := w.Atlas().Ping(w.Letters()[0], 3, 11); len(res) == 0 {
			b.Fatal("no ping results")
		}
	}
}

func BenchmarkPingSampling(b *testing.B) { benchPingSampling(b) }
func BenchmarkPingSamplingSerial(b *testing.B) {
	withProcs(1, func() { benchPingSampling(b) })
}

// Ablation benchmarks: the design-choice sweeps DESIGN.md calls out.

func BenchmarkAblationDeploymentSize(b *testing.B)   { benchExperiment(b, "abl-size") }
func BenchmarkAblationPeeringBreadth(b *testing.B)   { benchExperiment(b, "abl-peering") }
func BenchmarkAblationRoutingBaselines(b *testing.B) { benchExperiment(b, "abl-routing") }
func BenchmarkAblationLetterPreference(b *testing.B) { benchExperiment(b, "abl-tau") }
func BenchmarkAblationLocalRoot(b *testing.B)        { benchExperiment(b, "abl-localroot") }

// Companion studies: §8 site affinity and §7.3 growth.

func BenchmarkSiteAffinity(b *testing.B)       { benchExperiment(b, "affinity") }
func BenchmarkDeploymentGrowth(b *testing.B)   { benchExperiment(b, "growth") }
func BenchmarkRegulatoryRings(b *testing.B)    { benchExperiment(b, "apps") }
func BenchmarkContinentBreakdown(b *testing.B) { benchExperiment(b, "continents") }
