package anycastctx

// Scenario-engine benchmarks: the incremental/full-rebuild pair measures
// what the engine's dirty-set machinery buys. Both evaluate the same
// builtin single-site withdrawal against the shared bench world; the
// equivalence suite guarantees their outputs are byte-identical, so the
// pair isolates pure recomputation cost.

import (
	"context"
	"sync"
	"testing"

	"anycastctx/internal/obs"
	"anycastctx/internal/scenario"
)

var (
	scnBaseline     *scenario.Baseline
	scnBaselineOnce sync.Once
)

func benchScenario(b *testing.B, full bool) {
	w := getBenchWorld(b)
	scnBaselineOnce.Do(func() { scnBaseline = scenario.NewBaseline(w) })
	spec, ok := scenario.Builtin("withdraw-f-site")
	if !ok {
		b.Fatal("builtin withdraw-f-site missing")
	}
	ctx := context.Background()
	// Prime once outside the timer: the first evaluation fills the base
	// deployments' route caches, which both paths then read through.
	if _, err := scenario.Eval(ctx, scnBaseline, spec, scenario.Options{FullRebuild: full}); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := scenario.Eval(ctx, scnBaseline, spec, scenario.Options{FullRebuild: full}); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if rss := obs.PeakRSSBytes(); rss > 0 {
		b.ReportMetric(float64(rss), "peak_rss_bytes")
	}
}

// BenchmarkScenarioIncremental evaluates a single-site withdrawal with
// the dirty-set shortcuts on: only invalidated routes re-resolve and only
// affected recursives reassemble.
func BenchmarkScenarioIncremental(b *testing.B) { benchScenario(b, false) }

// BenchmarkScenarioFullRebuild evaluates the same withdrawal with every
// shortcut disabled — the oracle path, and the cost incremental
// evaluation is measured against.
func BenchmarkScenarioFullRebuild(b *testing.B) { benchScenario(b, true) }
