#!/usr/bin/env bash
# Benchmark-trajectory harness: runs the root-package benchmark suite
# (one benchmark per paper artifact) with -benchmem and writes a
# machine-readable BENCH_<date>.json so future PRs can diff ns/op,
# allocs/op, and peak-RSS per figure against the committed baseline.
#
# Usage:
#   scripts/bench.sh                         # full suite, count=3, scale 0.2
#   BENCH_PATTERN='Fig5a|Fig7a' scripts/bench.sh
#   ANYCASTCTX_TEST_SCALE=0.05 BENCH_COUNT=1 scripts/bench.sh
#
# Environment:
#   ANYCASTCTX_TEST_SCALE  world scale the bench world is built at (default 0.2)
#   BENCH_COUNT            -count repetitions (default 3)
#   BENCH_PATTERN          -bench regex (default '.': every benchmark)
#   BENCH_OUT              output path (default BENCH_<date>.json in repo root)
set -euo pipefail
cd "$(dirname "$0")/.."

SCALE="${ANYCASTCTX_TEST_SCALE:-0.2}"
COUNT="${BENCH_COUNT:-3}"
PATTERN="${BENCH_PATTERN:-.}"
OUT="${BENCH_OUT:-BENCH_$(date +%F).json}"

TXT="$(mktemp)"
trap 'rm -f "$TXT"' EXIT

ANYCASTCTX_TEST_SCALE="$SCALE" \
	go test -run '^$' -bench "$PATTERN" -benchmem -count "$COUNT" . | tee "$TXT"

go run ./cmd/benchdiff -convert "$TXT" -scale "$SCALE" -count "$COUNT" > "$OUT"
echo "wrote $OUT"
