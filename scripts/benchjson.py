#!/usr/bin/env python3
"""Convert `go test -bench` output into the BENCH_<date>.json trajectory
format written by scripts/bench.sh.

Usage: benchjson.py <bench-output.txt> <scale> <count>

Output schema (one file per recorded run, committed so later PRs can diff):

{
  "date": "YYYY-MM-DD",
  "scale": 0.2,
  "count": 3,
  "benchmarks": {
    "Fig5aCDNGeoInflation": {
      "ns_per_op": [...],        # one entry per -count repetition
      "bytes_per_op": [...],
      "allocs_per_op": [...],
      "output_bytes": [...],     # rendered experiment output size (ReportMetric)
      "peak_rss_bytes": [...]    # process VmHWM sampled after the run (linux)
    },
    ...
  }
}
"""
import datetime
import json
import re
import sys


def main() -> None:
    if len(sys.argv) != 4:
        sys.exit(__doc__)
    path, scale, count = sys.argv[1], float(sys.argv[2]), int(sys.argv[3])

    line_re = re.compile(r"^Benchmark(\S+?)(?:-\d+)?\s+\d+\s+(.*)$")
    metric_re = re.compile(r"([\d.e+]+)\s+(\S+)")
    keymap = {
        "ns/op": "ns_per_op",
        "B/op": "bytes_per_op",
        "allocs/op": "allocs_per_op",
        "output_bytes": "output_bytes",
        "peak_rss_bytes": "peak_rss_bytes",
        "retained_bytes": "retained_bytes",
    }

    benchmarks: dict[str, dict[str, list[float]]] = {}
    with open(path) as f:
        for line in f:
            m = line_re.match(line.strip())
            if not m:
                continue
            name, rest = m.group(1), m.group(2)
            entry = benchmarks.setdefault(name, {})
            for value, unit in metric_re.findall(rest):
                key = keymap.get(unit)
                if key:
                    entry.setdefault(key, []).append(float(value))

    if not benchmarks:
        sys.exit(f"benchjson: no benchmark lines found in {path}")

    json.dump(
        {
            "date": datetime.date.today().isoformat(),
            "scale": scale,
            "count": count,
            "benchmarks": benchmarks,
        },
        sys.stdout,
        indent=2,
        sort_keys=True,
    )
    print()


if __name__ == "__main__":
    main()
