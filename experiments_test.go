package anycastctx

import (
	"strings"
	"sync"
	"testing"
)

var (
	sharedWorld     *World
	sharedWorldOnce sync.Once
	sharedWorldErr  error
)

// testWorld builds one shared test-scale world for all facade tests.
func testWorld(t *testing.T) *World {
	t.Helper()
	sharedWorldOnce.Do(func() {
		sharedWorld, sharedWorldErr = BuildWorld(TestScaleConfig(3))
	})
	if sharedWorldErr != nil {
		t.Fatal(sharedWorldErr)
	}
	return sharedWorld
}

func TestExperimentRegistryComplete(t *testing.T) {
	want := []string{
		"fig1", "fig2a", "fig2b", "fig3", "fig4a", "fig4b", "fig5a", "fig5b",
		"fig6a", "fig6b", "fig7a", "fig7b", "fig8", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "tab1", "tab23", "tab4", "tab5", "appc", "local",
		"abl-size", "abl-peering", "abl-routing", "abl-tau", "abl-localroot",
		"affinity", "growth", "apps", "continents", "robust1",
	}
	got := map[string]bool{}
	for _, e := range Experiments() {
		got[e.ID] = true
		if e.Title == "" || e.PaperClaim == "" || e.Run == nil {
			t.Errorf("experiment %s incompletely registered", e.ID)
		}
	}
	for _, id := range want {
		if !got[id] {
			t.Errorf("experiment %s not registered", id)
		}
	}
	if len(got) != len(want) {
		t.Errorf("registered %d experiments, want %d", len(got), len(want))
	}
}

func TestRunExperimentUnknown(t *testing.T) {
	w := testWorld(t)
	if _, err := RunExperiment(w, "fig99"); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunEveryExperiment(t *testing.T) {
	w := testWorld(t)
	for _, e := range Experiments() {
		e := e
		t.Run(e.ID, func(t *testing.T) {
			res, err := RunExperiment(w, e.ID)
			if err != nil {
				t.Fatalf("experiment %s failed: %v", e.ID, err)
			}
			if res.ID != e.ID {
				t.Errorf("result ID %q, want %q", res.ID, e.ID)
			}
			if res.Output == "" {
				t.Error("empty output")
			}
			if res.Measured == "" {
				t.Error("empty measurement summary")
			}
			if strings.Contains(res.Output, "NaN") {
				t.Errorf("output contains NaN:\n%s", res.Output)
			}
		})
	}
}

func TestRunAll(t *testing.T) {
	w := testWorld(t)
	results, err := RunAll(w)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != len(Experiments()) {
		t.Errorf("RunAll returned %d results for %d experiments", len(results), len(Experiments()))
	}
}

func TestWorldDeterminism(t *testing.T) {
	w1, err := BuildWorld(TestScaleConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := BuildWorld(TestScaleConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	r1, err := RunExperiment(w1, "fig3")
	if err != nil {
		t.Fatal(err)
	}
	r2, err := RunExperiment(w2, "fig3")
	if err != nil {
		t.Fatal(err)
	}
	if r1.Output != r2.Output {
		t.Error("identical seeds produced different fig3 outputs")
	}
	if r1.Measured != r2.Measured {
		t.Error("identical seeds produced different fig3 measurements")
	}
}

func TestBuildWorldValidation(t *testing.T) {
	if _, err := BuildWorld(Config{Seed: 1, Scale: 2}); err == nil {
		t.Error("scale > 1 accepted")
	}
	if _, err := BuildWorld(Config{Seed: 1, Year: 1999}); err == nil {
		t.Error("unknown year accepted")
	}
}

func TestDITL2020World(t *testing.T) {
	cfg := TestScaleConfig(5)
	cfg.Year = DITL2020
	w, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(w.Letters()) != 7 {
		t.Errorf("2020 letters = %d, want 7", len(w.Letters()))
	}
	names := map[string]bool{}
	for _, l := range w.Letters() {
		names[l.Name] = true
	}
	if !names["H"] || names["B"] || names["L"] {
		t.Errorf("2020 letter set wrong: %v", names)
	}
}

func TestExperimentsDoNotPerturbTheWorld(t *testing.T) {
	// Ablations build their own environments; running any experiment must
	// not change what another measures afterwards (no hidden graph or
	// pool mutation).
	w, err := BuildWorld(TestScaleConfig(21))
	if err != nil {
		t.Fatal(err)
	}
	before, err := RunExperiment(w, "fig5a")
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{"abl-size", "abl-peering", "growth", "fig11", "apps"} {
		if _, err := RunExperiment(w, id); err != nil {
			t.Fatalf("%s: %v", id, err)
		}
	}
	after, err := RunExperiment(w, "fig5a")
	if err != nil {
		t.Fatal(err)
	}
	if before.Output != after.Output || before.Measured != after.Measured {
		t.Error("fig5a changed after running other experiments; world was perturbed")
	}
}
