package anycastctx

import (
	"context"
	"testing"

	"anycastctx/internal/stage"
)

// TestFig2aDemandsOnlyItsStages proves the build is demand-driven: on a
// fresh (never-built) world, running fig2a — which declares only the DITL
// campaign and the join — must leave the CDN, its telemetry tables, and
// the Atlas platform pending. Under the monolithic build every experiment
// paid for all of them.
func TestFig2aDemandsOnlyItsStages(t *testing.T) {
	w, err := NewWorld(TestScaleConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunExperimentCtx(context.Background(), w, "fig2a"); err != nil {
		t.Fatal(err)
	}
	mustPending := map[stage.ID]bool{
		stage.CDN: true, stage.Atlas: true, stage.Locations: true,
		stage.ServerLogs: true, stage.ClientRows: true,
	}
	mustDone := map[stage.ID]bool{
		stage.Campaign: true, stage.Join: true, stage.UserCounts: true,
	}
	for _, st := range w.StageStatuses() {
		if mustPending[st.ID] && st.Outcome != "pending" {
			t.Errorf("stage %s materialized (%s) for fig2a, which never reads it", st.ID, st.Outcome)
		}
		if mustDone[st.ID] && st.Outcome == "pending" {
			t.Errorf("stage %s still pending after fig2a, which reads it", st.ID)
		}
	}
}

// TestNeedsDeclared: every experiment that reads world stages must
// declare Needs, or the CLI's pre-demand (and -explain) lies about what
// it materializes. Experiments with nil Needs must genuinely touch no
// stage: run each against a fresh world and verify nothing materialized.
func TestNeedsDeclared(t *testing.T) {
	ctx := context.Background()
	for _, e := range Experiments() {
		if len(e.Needs) > 0 {
			for _, id := range e.Needs {
				if !stage.Valid(id) {
					t.Errorf("%s: invalid stage %q in Needs", e.ID, id)
				}
			}
			continue
		}
		e := e
		t.Run(e.ID, func(t *testing.T) {
			w, err := NewWorld(TestScaleConfig(11))
			if err != nil {
				t.Fatal(err)
			}
			if _, err := RunExperimentCtx(ctx, w, e.ID); err != nil {
				t.Fatal(err)
			}
			for _, st := range w.StageStatuses() {
				if st.Outcome != "pending" {
					t.Errorf("%s declares no Needs but materialized stage %s", e.ID, st.ID)
				}
			}
		})
	}
}

// TestDemandDrivenMatchesEagerBuild: every experiment must produce
// byte-identical output whether its world was eagerly built (the classic
// monolith behavior, via Build) or materialized lazily from a fresh
// shell. This is the sufficiency oracle for the Needs declarations — an
// under-declared stage would still materialize through its accessor, but
// any ordering dependence between stages would diverge here.
func TestDemandDrivenMatchesEagerBuild(t *testing.T) {
	ctx := context.Background()
	eager, err := BuildWorld(TestScaleConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	lazy, err := NewWorld(TestScaleConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range Experiments() {
		re, err := RunExperimentCtx(ctx, eager, e.ID)
		if err != nil {
			t.Fatalf("%s on eager world: %v", e.ID, err)
		}
		rl, err := RunExperimentCtx(ctx, lazy, e.ID)
		if err != nil {
			t.Fatalf("%s on lazy world: %v", e.ID, err)
		}
		if re.Measured != rl.Measured {
			t.Errorf("%s: Measured differs\neager: %s\nlazy:  %s", e.ID, re.Measured, rl.Measured)
		}
		if re.Output != rl.Output {
			t.Errorf("%s: Output differs between eager and lazy worlds", e.ID)
		}
	}
}

// TestWarmWorldMatchesCold runs the full experiment suite against a
// store-backed warm world and requires byte-identical results — the
// end-to-end form of the cold-vs-warm contract, crossing the codec
// boundary for every persisted stage.
func TestWarmWorldMatchesCold(t *testing.T) {
	ctx := context.Background()
	dir := t.TempDir()
	cfg := TestScaleConfig(11)
	cfg.CacheDir = dir
	cold, err := BuildWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	coldRes, err := RunAllCtx(ctx, cold)
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewWorld(cfg)
	if err != nil {
		t.Fatal(err)
	}
	warmRes, err := RunAllCtx(ctx, warm)
	if err != nil {
		t.Fatal(err)
	}
	if len(coldRes) != len(warmRes) {
		t.Fatalf("result counts differ: %d cold, %d warm", len(coldRes), len(warmRes))
	}
	for i := range coldRes {
		if coldRes[i].Output != warmRes[i].Output || coldRes[i].Measured != warmRes[i].Measured {
			t.Errorf("%s: warm-cache output differs from cold", coldRes[i].ID)
		}
	}
	loaded := 0
	for _, st := range warm.StageStatuses() {
		if st.Persisted && st.Outcome == "loaded" {
			loaded++
		}
	}
	if loaded == 0 {
		t.Error("warm run loaded no artifacts — the store was never used")
	}
	// The campaign is the most expensive persisted stage; a warm world
	// must have loaded it, not recomputed it.
	for _, st := range warm.StageStatuses() {
		if st.ID == stage.Campaign && st.Outcome != "loaded" {
			t.Errorf("campaign outcome %q on warm world, want loaded", st.Outcome)
		}
	}
}
