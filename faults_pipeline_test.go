package anycastctx

// End-to-end fault-injection test: a capture damaged at the pcap layer
// must flow through the analysis pipeline without aborting, and the
// figures computed from it must be byte-identical to the figures computed
// from just the surviving records — degradation drops data, it never
// distorts it.

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"anycastctx/internal/ditl"
	"anycastctx/internal/faults"
	"anycastctx/internal/pcapio"
)

// analysisFields projects the analysis-relevant part of a capture
// summary (everything except the degradation accounting) into a
// comparable string.
func analysisFields(s *ditl.CaptureSummary) string {
	return fmt.Sprintf("packets=%d udp=%d tcp=%d resp=%d nx=%d ptr=%d span=%v sources=%v",
		s.Packets, s.UDPQueries, s.TCPPackets, s.Responses, s.NXDomain, s.PTRQueries,
		s.FirstToLast, s.Sources)
}

func emitTestCapture(t *testing.T, w *World, seed int64, maxPackets int) ([]byte, int, int, int) {
	t.Helper()
	li, site := busiestLetterSite(w)
	var buf bytes.Buffer
	n, err := w.Campaign().EmitSiteCapture(&buf, li, site, maxPackets, seed)
	if err != nil {
		t.Fatal(err)
	}
	if n < 100 {
		t.Fatalf("only %d packets emitted", n)
	}
	return buf.Bytes(), n, li, site
}

func TestPipelineSurvivesFaults(t *testing.T) {
	w := testWorld(t)
	capture, _, _, _ := emitTestCapture(t, w, 1234, 3000)

	t.Run("byte_identity", func(t *testing.T) {
		// No DNS flips here: a flipped DNS byte may still decode (into a
		// different message), so those records are excluded from the
		// byte-identity contract. Every other damage class is provably
		// rejected or removed before analysis.
		pol := faults.Policy{
			Seed:              4242,
			PcapDropProb:      0.01,
			PcapCorruptProb:   0.01,
			PcapTruncateProb:  0.01,
			PcapDuplicateProb: 0.01,
			PcapReorderProb:   0.01,
		}
		m := faults.NewMangler(pol)
		damaged := m.MangleCapture(capture)
		fates := m.Fates()
		st := m.Stats()
		if st.Dropped == 0 || st.Corrupted == 0 || st.Truncated == 0 || st.Duplicated == 0 || st.Reordered == 0 {
			t.Fatalf("fault mix too sparse to prove anything: %+v", st)
		}

		// Rebuild the expected capture from the fates: survivors only,
		// duplicated survivors twice.
		var records []pcapio.Record
		r, err := pcapio.NewReader(bytes.NewReader(capture))
		if err != nil {
			t.Fatal(err)
		}
		if err := r.ForEach(func(rec pcapio.Record) error {
			records = append(records, rec)
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		if len(records) != len(fates) {
			t.Fatalf("%d records, %d fates", len(records), len(fates))
		}
		var expected bytes.Buffer
		ew, err := pcapio.NewWriter(&expected)
		if err != nil {
			t.Fatal(err)
		}
		wantMalformed := 0
		for i, rec := range records {
			copies := 1
			if fates[i]&faults.FateDuplicated != 0 {
				copies = 2
			}
			if fates[i]&faults.FateCorrupted != 0 {
				wantMalformed += copies
			}
			if !fates[i].Survives() {
				continue
			}
			for c := 0; c < copies; c++ {
				if err := ew.WritePacket(rec.Time, rec.Data); err != nil {
					t.Fatal(err)
				}
			}
		}
		if err := ew.Close(); err != nil {
			t.Fatal(err)
		}

		wantSum, err := ditl.SummarizeCapture(bytes.NewReader(expected.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		gotSum, err := ditl.SummarizeCapture(bytes.NewReader(damaged))
		if err != nil {
			t.Fatalf("summarizing damaged capture: %v", err)
		}
		if got, want := analysisFields(gotSum), analysisFields(wantSum); got != want {
			t.Errorf("damaged-capture analysis diverged from surviving subset:\n got %s\nwant %s", got, want)
		}
		// The degradation accounting must line up with what was injected:
		// truncated records are flagged-and-skipped, corrupted ones fail
		// packet decode, dropped ones are simply absent.
		if gotSum.Packets+gotSum.Skipped() != gotSum.RecordsRead {
			t.Errorf("accounting leak: %d packets + %d skipped != %d read",
				gotSum.Packets, gotSum.Skipped(), gotSum.RecordsRead)
		}
		if gotSum.MalformedPackets != wantMalformed {
			t.Errorf("malformed packets %d != injected corrupted copies %d", gotSum.MalformedPackets, wantMalformed)
		}
	})

	t.Run("all_faults_complete", func(t *testing.T) {
		m := faults.NewMangler(faults.Uniform(777, 0.03))
		damaged := faults.TruncateTail(m.MangleCapture(capture), 7)
		sum, err := ditl.SummarizeCapture(bytes.NewReader(damaged))
		if err != nil {
			t.Fatalf("pipeline aborted on damaged capture: %v", err)
		}
		if sum.Packets == 0 {
			t.Fatal("no packets survived a 3% fault mix")
		}
		if sum.Packets+sum.Skipped() != sum.RecordsRead {
			t.Errorf("accounting leak: %d + %d != %d", sum.Packets, sum.Skipped(), sum.RecordsRead)
		}
		// A 7-byte tail cut always lands inside the final record's data
		// (every record carries a 20-byte-plus IP packet), so lenient
		// recovery must count exactly one dropped record.
		if sum.DroppedRecords != 1 {
			t.Errorf("dropped records = %d, want 1 (the cut tail)", sum.DroppedRecords)
		}
	})

	t.Run("telemetry_rows_subset", func(t *testing.T) {
		cleanLogs := w.CDN().ServerSideLogs(w.Locations(), 5)
		cleanClient := w.CDN().ClientMeasurements(w.Locations(), 6)

		w.CDN().Faults = faults.Policy{Seed: 31, TelemetryDropProb: 0.2}
		defer func() { w.CDN().Faults = faults.Policy{} }()
		faultyLogs := w.CDN().ServerSideLogs(w.Locations(), 5)
		faultyClient := w.CDN().ClientMeasurements(w.Locations(), 6)

		if len(faultyLogs) >= len(cleanLogs) {
			t.Errorf("server rows: %d faulty vs %d clean, expected losses", len(faultyLogs), len(cleanLogs))
		}
		if len(faultyClient) >= len(cleanClient) {
			t.Errorf("client rows: %d faulty vs %d clean, expected losses", len(faultyClient), len(cleanClient))
		}
		// Surviving rows must be byte-identical to their clean-run
		// counterparts: row loss never perturbs other rows' noise draws.
		cleanSet := make(map[string]bool, len(cleanLogs))
		for _, row := range cleanLogs {
			cleanSet[fmt.Sprintf("%v", row)] = true
		}
		for _, row := range faultyLogs {
			if !cleanSet[fmt.Sprintf("%v", row)] {
				t.Fatalf("faulty-run row not present in clean run: %+v", row)
			}
		}
		cleanCSet := make(map[string]bool, len(cleanClient))
		for _, row := range cleanClient {
			cleanCSet[fmt.Sprintf("%v", row)] = true
		}
		for _, row := range faultyClient {
			if !cleanCSet[fmt.Sprintf("%v", row)] {
				t.Fatalf("faulty-run client row not present in clean run: %+v", row)
			}
		}
	})

	t.Run("site_withdrawal", func(t *testing.T) {
		_, cleanN, li, site := emitTestCapture(t, w, 555, 3000)

		pol := faults.Policy{Seed: 17, SiteWithdrawProb: 1}
		frac, withdrawn := pol.SiteWithdrawCut(li, site)
		if !withdrawn {
			t.Fatal("probability-1 policy did not withdraw the site")
		}
		w.Campaign().Faults = pol
		defer func() { w.Campaign().Faults = faults.Policy{} }()
		var buf bytes.Buffer
		n, err := w.Campaign().EmitSiteCapture(&buf, li, site, 3000, 555)
		if err != nil {
			t.Fatal(err)
		}
		if n >= cleanN {
			t.Errorf("withdrawn-site capture has %d packets, clean has %d", n, cleanN)
		}
		sum, err := ditl.SummarizeCapture(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatal(err)
		}
		if sum.Packets != n {
			t.Errorf("summary packets %d != emitted %d", sum.Packets, n)
		}
		// The cut-off truncates the capture window: no surviving packet is
		// timestamped past it.
		if limit := time.Duration(frac * float64(48*time.Hour)); sum.FirstToLast > limit {
			t.Errorf("capture span %v exceeds withdrawal cut-off %v", sum.FirstToLast, limit)
		}
	})
}
