module anycastctx

go 1.22
