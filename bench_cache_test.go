package anycastctx

// Artifact-store benchmarks: the cold/warm pairs record what the
// content-addressed stage cache buys. Cold builds compute every stage
// from scratch; warm runs replay the persisted stages (rates, routes,
// campaign, join, telemetry) from a primed -cache-dir, materializing
// everything a full experiment or scenario run touches. The cold-vs-warm
// byte-identity oracle (internal/world and TestWarmWorldMatchesCold)
// guarantees both paths produce identical worlds, so each pair isolates
// pure recomputation cost.

import (
	"context"
	"os"
	"sync"
	"testing"

	"anycastctx/internal/scenario"
	"anycastctx/internal/stage"
	"anycastctx/internal/world"
)

// warmDir holds the shared primed artifact directory for the warm-path
// benchmarks. Priming happens once, outside every timer.
var (
	warmDir     string
	warmDirOnce sync.Once
	warmDirErr  error
)

func warmCacheDir(b *testing.B) string {
	b.Helper()
	warmDirOnce.Do(func() {
		// Not b.TempDir: the directory must outlive the first benchmark
		// so every warm benchmark shares the primed store.
		dir, err := os.MkdirTemp("", "anycastctx-bench-cache-")
		if err != nil {
			warmDirErr = err
			return
		}
		warmDir = dir
		w, err := world.Build(context.Background(), warmCfg())
		if err != nil {
			warmDirErr = err
			return
		}
		warmDirErr = w.Demand(context.Background(), stage.Join, stage.ServerLogs, stage.ClientRows)
	})
	if warmDirErr != nil {
		b.Fatal(warmDirErr)
	}
	return warmDir
}

func warmCfg() world.Config {
	return world.Config{Seed: 1, Scale: benchScale(), CacheDir: warmDir}
}

func coldCfg() world.Config {
	return world.Config{Seed: 1, Scale: benchScale()}
}

// buildFull materializes the classic world plus the join and telemetry
// stages — everything a full experiment run demands.
func buildFull(b *testing.B, cfg world.Config) *world.World {
	b.Helper()
	w, err := world.Build(context.Background(), cfg)
	if err != nil {
		b.Fatal(err)
	}
	if err := w.Demand(context.Background(), stage.Join, stage.ServerLogs, stage.ClientRows); err != nil {
		b.Fatal(err)
	}
	return w
}

// BenchmarkWorldColdBuild computes every stage from scratch — the
// monolithic build cost every experiment run used to pay.
func BenchmarkWorldColdBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		buildFull(b, coldCfg())
	}
}

// BenchmarkWorldWarmLoad replays the same stages from the artifact store.
func BenchmarkWorldWarmLoad(b *testing.B) {
	warmCacheDir(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buildFull(b, warmCfg())
	}
}

// benchScenarioStart measures the what-if end-to-end cost from nothing to
// an evaluated single-site withdrawal: world (cold or warm), baseline,
// incremental evaluation.
func benchScenarioStart(b *testing.B, cfg world.Config) {
	spec, ok := scenario.Builtin("withdraw-f-site")
	if !ok {
		b.Fatal("builtin withdraw-f-site missing")
	}
	ctx := context.Background()
	for i := 0; i < b.N; i++ {
		w, err := world.Build(ctx, cfg)
		if err != nil {
			b.Fatal(err)
		}
		base := scenario.NewBaseline(w)
		if _, err := scenario.Eval(ctx, base, spec, scenario.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkScenarioColdStart evaluates a single-site withdrawal starting
// from nothing: full world compute, then the incremental evaluation.
func BenchmarkScenarioColdStart(b *testing.B) {
	benchScenarioStart(b, coldCfg())
}

// BenchmarkScenarioWarmStart evaluates the same withdrawal with the world
// replayed from the artifact store — the interactive what-if loop the
// store exists for.
func BenchmarkScenarioWarmStart(b *testing.B) {
	warmCacheDir(b)
	b.ResetTimer()
	benchScenarioStart(b, warmCfg())
}
